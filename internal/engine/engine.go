// Package engine is the sharded parallel execution engine: a frontier-based
// vertex-centric executor for the five kernels that produces results
// bit-identical to algorithms.RunReference at any worker count.
//
// Parallelism comes from partitioning *destination* vertices into shards
// (shard.go): every destination is owned by exactly one shard, so the
// per-vertex accumulator Vtemp[v] is written by a single goroutine, and each
// shard consumes contributions in ascending (source, edge-index) order —
// exactly the fold order of the reference executor's serial loop. Because
// the Reduce fold over each vertex's contributions replays the reference
// order operation for operation, the output is bit-identical even for
// PageRank, whose float64 summation is not associative and therefore
// sensitive to merge order (DESIGN.md §9).
//
// Two iteration modes cover the paper's kernels:
//
//   - dense (PR-style AllActive): the graph is pre-split once into
//     destination-sharded sub-CSRs, and every iteration each shard streams
//     its own edge slice — no filtering, no materialization.
//   - sparse (BFS/CC/SSSP/SSWP): a scatter phase partitions the sorted
//     frontier into contiguous chunks and materializes (dst, contribution)
//     pairs into per-(chunk, shard) buckets; the gather phase merges the
//     buckets per shard in fixed ascending chunk order, which concatenates
//     back to ascending source order.
//
// All phase buffers live on the Engine and are reused across iterations and
// runs. An Engine is not safe for concurrent Run calls; build one per
// goroutine (the graph itself is shared read-only).
package engine

import (
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"piccolo/internal/algorithms"
	"piccolo/internal/graph"
	"piccolo/internal/obs"
)

// DefaultMaxIters is the iteration cap applied by callers that pass no
// explicit bound (piccolo.RunKernel, runner queries). It is far above the
// convergence point of every kernel at the reproduction's scales; it exists
// so a pathological input cannot spin forever.
const DefaultMaxIters = 10000

// Config tunes an Engine. The zero value selects GOMAXPROCS workers.
type Config struct {
	// Workers is the number of goroutines per parallel phase; <= 0 selects
	// runtime.GOMAXPROCS(0). Results are bit-identical at every value.
	Workers int
	// Shards is the number of destination partitions; 0 selects
	// 2 × Workers (capped), which over-decomposes a little for load
	// balance on skewed in-degree distributions while keeping the
	// sub-CSR source lists (the streaming mode's fixed scan cost) small.
	// Results are bit-identical at every value.
	Shards int
}

// Result is the functional output, structurally identical to the reference
// executor's so differential tests compare the two directly.
type Result = algorithms.ReferenceResult

// pair is one materialized contribution in the sparse scatter phase.
type pair struct {
	dst     uint32
	contrib uint64
}

// Engine executes kernels on one graph with a fixed sharding.
type Engine struct {
	g *graph.CSR
	// workers is atomic so SetWorkers is safe concurrently with a running
	// execution (runner worker-slot changes race cached engines
	// otherwise); each parallel phase snapshots it once.
	workers atomic.Int32
	shards  int

	// bounds[s]..bounds[s+1] is the destination range owned by shard s;
	// owner[v] is the shard owning destination v.
	bounds []uint32
	owner  []uint16

	// dense sub-CSRs, built on the first AllActive run or the first fat
	// sparse frontier; srcsTotal is the sum of their source-list lengths
	// (the per-iteration scan cost of the streaming path).
	dense     []denseShard
	denseOnce sync.Once
	srcsTotal uint64

	// Per-run state, reused across iterations and runs.
	vtemp    []uint64
	updated  []bool
	activeIn []bool
	frontier []uint32
	touched  [][]uint32 // per shard: destinations with contributions
	next     [][]uint32 // per shard: activated vertices (sorted)
	buckets  [][][]pair // [chunk][shard] scatter buckets
	shardCnt []uint64   // edges processed per dense shard
	moved    []bool     // per-shard dense convergence flag

	// trace, when non-nil, receives one "superstep" span per iteration
	// (obs.Trace; schema in DESIGN.md §11). It is nil in normal operation
	// — the only cost then is one nil check per iteration — and is never
	// read or written by the parallel phases themselves, so it cannot
	// perturb the determinism argument: tracing observes the phase
	// barriers, it does not participate in them.
	trace *obs.Trace
	// scatterMark is the scatter→gather boundary timestamp of the last
	// scatter-strategy iteration, recorded only while tracing (written
	// between phase barriers by the single Run owner, never by workers).
	scatterMark time.Time
}

// New builds an engine for g. The sharding pass is O(V+E); dense sub-CSRs
// are built lazily on the first AllActive kernel run.
func New(g *graph.CSR, cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := cfg.Shards
	if p <= 0 {
		p = 2 * w
	}
	if p > maxShards {
		p = maxShards
	}
	if uint32(p) > g.V {
		p = int(g.V)
	}
	if p < 1 {
		p = 1
	}
	e := &Engine{g: g, shards: p}
	e.workers.Store(int32(w))
	e.partition()
	return e
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int { return int(e.workers.Load()) }

// SetWorkers adjusts the phase-parallelism width for subsequent parallel
// phases (w <= 0 selects GOMAXPROCS). The sharding is unchanged and
// results are bit-identical at every width, so a cached Engine can be
// re-run at whatever parallelism is available right now. The store is
// atomic, so SetWorkers is safe even while another goroutine is inside
// Run — each phase snapshots the width once, and no width affects the
// result bits (engine_test.go's race test runs exactly that schedule).
func (e *Engine) SetWorkers(w int) {
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	e.workers.Store(int32(w))
}

// Shards returns the number of destination partitions.
func (e *Engine) Shards() int { return e.shards }

// SetTrace attaches a span recorder to subsequent Runs (nil detaches).
// Callers that share an Engine (the runner's per-graph memo) must attach
// and detach under the same lock that serializes Run. Results are
// bit-identical with and without a recorder — tracing only reads the
// phase timings.
func (e *Engine) SetTrace(tr *obs.Trace) { e.trace = tr }

// Run executes the kernel from src until convergence or maxIters and
// returns properties, iteration count and edge visits bit-identical to
// algorithms.RunReference(g, k, src, maxIters).
func (e *Engine) Run(k algorithms.Kernel, src uint32, maxIters int) *Result {
	g := e.g
	prop, active := k.Init(g, src)
	res := &Result{}
	e.ensureState()
	identity := k.Identity()
	for i := range e.vtemp {
		e.vtemp[i] = identity
	}
	// updated/activeIn are cleared by the phases that set them, but an
	// aborted (panicked) earlier run may have left stale marks — a stale
	// updated[v] would silently drop v's contributions. Clearing here
	// makes every Run self-contained for O(V), which the per-iteration
	// work dwarfs.
	clear(e.updated)
	clear(e.activeIn)
	if k.AllActive() {
		e.runDense(k, prop, active, maxIters, res)
	} else {
		e.runSparse(k, prop, active, maxIters, res)
	}
	res.Prop = prop
	return res
}

// ensureState allocates the per-run buffers on first use.
func (e *Engine) ensureState() {
	if e.vtemp != nil {
		return
	}
	e.vtemp = make([]uint64, e.g.V)
	e.updated = make([]bool, e.g.V)
	e.activeIn = make([]bool, e.g.V)
	e.touched = make([][]uint32, e.shards)
	e.next = make([][]uint32, e.shards)
	e.shardCnt = make([]uint64, e.shards)
	e.moved = make([]bool, e.shards)
}

// runDense is the AllActive (PR-style) mode: every shard streams its dense
// sub-CSR each iteration, then applies over its owned vertex range.
func (e *Engine) runDense(k algorithms.Kernel, prop []uint64, active []bool, maxIters int, res *Result) {
	e.denseOnce.Do(e.buildDense)
	g := e.g
	identity := k.Identity()

	anyActive := false
	allActive := true
	for _, a := range active {
		if a {
			anyActive = true
		} else {
			allActive = false
		}
	}
	// act == nil means every source is active, which holds from the second
	// iteration on (the reference re-activates every vertex while any
	// property moves); the first iteration honors Init's flags.
	act := active
	if allActive {
		act = nil
	}

	fp := fastOpsFor(k)
	fastDense := fp != nil && fp.dense != nil

	for iter := 0; iter < maxIters && anyActive; iter++ {
		res.Iterations++
		var tStart time.Time
		activeSrcs := -1
		if e.trace != nil {
			if act != nil {
				activeSrcs = 0
				for _, a := range act {
					if a {
						activeSrcs++
					}
				}
			} else {
				activeSrcs = int(g.V)
			}
			tStart = time.Now()
		}
		e.parallelDo(e.shards, func(s int) {
			ds := &e.dense[s]
			vtemp := e.vtemp
			var cnt uint64
			for i, u := range ds.srcs {
				if act != nil && !act[u] {
					continue
				}
				deg := g.OutDeg(u)
				pu := prop[u]
				lo, hi := ds.rowPtr[i], ds.rowPtr[i+1]
				if fastDense {
					fp.dense(vtemp, ds.col[lo:hi], ds.weight[lo:hi], pu, deg)
				} else {
					for j := lo; j < hi; j++ {
						v := ds.col[j]
						vtemp[v] = k.Reduce(vtemp[v], k.Process(ds.weight[j], pu, deg))
					}
				}
				cnt += uint64(hi - lo)
			}
			e.shardCnt[s] = cnt
		})
		var tContrib time.Time
		if e.trace != nil {
			tContrib = time.Now()
		}
		e.parallelDo(e.shards, func(s int) {
			moved := false
			for v := e.bounds[s]; v < e.bounds[s+1]; v++ {
				newProp := k.Apply(prop[v], e.vtemp[v])
				if !k.Converged(prop[v], newProp) {
					moved = true
				}
				prop[v] = newProp
				e.vtemp[v] = identity
			}
			e.moved[s] = moved
		})
		var iterEdges uint64
		for s := 0; s < e.shards; s++ {
			iterEdges += e.shardCnt[s]
		}
		res.EdgeVisits += iterEdges
		anyActive = false
		for _, m := range e.moved {
			if m {
				anyActive = true
				break
			}
		}
		act = nil
		if e.trace != nil {
			now := time.Now()
			e.trace.Add("superstep", tStart, now.Sub(tStart), map[string]any{
				"iter":      iter,
				"mode":      "dense",
				"frontier":  activeSrcs,
				"edges":     iterEdges,
				"shards":    e.shards,
				"stream_ns": tContrib.Sub(tStart).Nanoseconds(),
				"apply_ns":  now.Sub(tContrib).Nanoseconds(),
			})
		}
	}
}

// runSparse is the frontier mode. Each iteration picks one of two
// bit-identical contribution strategies by frontier fatness — materialized
// scatter-gather for thin frontiers, direct sub-CSR streaming for fat ones
// (the iPregel-style frontier-aware switch) — then applies per shard and
// rebuilds the frontier in shard order.
func (e *Engine) runSparse(k algorithms.Kernel, prop []uint64, active []bool, maxIters int, res *Result) {
	g := e.g
	identity := k.Identity()
	fp := fastOpsFor(k)

	frontier := e.frontier[:0]
	for v := uint32(0); v < g.V; v++ {
		if active[v] {
			frontier = append(frontier, v)
		}
	}

	for iter := 0; iter < maxIters && len(frontier) > 0; iter++ {
		res.Iterations++

		// Both strategies process exactly the out-edges of the frontier, in
		// the same per-destination order, so edge accounting and results
		// are identical; only the constant factors differ.
		var frontierEdges uint64
		for _, u := range frontier {
			frontierEdges += uint64(g.OutDeg(u))
		}
		res.EdgeVisits += frontierEdges
		var tStart time.Time
		if e.trace != nil {
			tStart = time.Now()
		}
		strategy := "scatter"
		if e.streamWorthwhile(frontierEdges) {
			strategy = "stream"
			e.denseOnce.Do(e.buildDense)
			e.streamContributions(k, fp, prop, frontier)
		} else {
			e.scatterContributions(k, fp, prop, frontier)
		}
		var tContrib time.Time
		if e.trace != nil {
			tContrib = time.Now()
		}

		e.parallelDo(e.shards, func(s int) {
			next := e.next[s][:0]
			for _, v := range e.touched[s] {
				newProp := k.Apply(prop[v], e.vtemp[v])
				if !k.Converged(prop[v], newProp) {
					prop[v] = newProp
					next = append(next, v)
				}
				e.vtemp[v] = identity
				e.updated[v] = false
			}
			slices.Sort(next)
			e.next[s] = next
		})

		// Shards own ascending destination ranges, so concatenating their
		// sorted activation lists in shard order yields the next frontier
		// already sorted ascending.
		fsize := len(frontier)
		frontier = frontier[:0]
		for s := 0; s < e.shards; s++ {
			frontier = append(frontier, e.next[s]...)
		}
		if e.trace != nil {
			now := time.Now()
			attrs := map[string]any{
				"iter":     iter,
				"mode":     "sparse",
				"strategy": strategy,
				"frontier": fsize,
				"edges":    frontierEdges,
				"shards":   e.shards,
				"apply_ns": now.Sub(tContrib).Nanoseconds(),
			}
			if strategy == "stream" {
				attrs["stream_ns"] = tContrib.Sub(tStart).Nanoseconds()
			} else {
				attrs["scatter_ns"] = e.scatterMark.Sub(tStart).Nanoseconds()
				attrs["gather_ns"] = tContrib.Sub(e.scatterMark).Nanoseconds()
			}
			e.trace.Add("superstep", tStart, now.Sub(tStart), attrs)
		}
	}
	e.frontier = frontier
}

// streamWorthwhile decides when streaming the sub-CSRs beats materializing
// contributions: the streaming pass pays one active-flag check per sub-CSR
// source entry, so it wins once the frontier's edge count exceeds that
// fixed scan cost. Before the sub-CSRs exist their size is estimated at V.
// The choice affects performance only — both paths are bit-identical — so
// it is free to differ across worker counts.
func (e *Engine) streamWorthwhile(frontierEdges uint64) bool {
	if e.dense == nil {
		return frontierEdges > uint64(e.g.V)
	}
	return frontierEdges > e.srcsTotal
}

// streamContributions is the fat-frontier strategy: every shard streams its
// own sub-CSR, skipping inactive sources, and reduces straight into Vtemp —
// no materialization. Source order is ascending within the shard, so the
// per-destination fold order is the reference order.
func (e *Engine) streamContributions(k algorithms.Kernel, fp *fastOps, prop []uint64, frontier []uint32) {
	g := e.g
	fast := fp != nil && fp.stream != nil
	for _, u := range frontier {
		e.activeIn[u] = true
	}
	e.parallelDo(e.shards, func(s int) {
		ds := &e.dense[s]
		touched := e.touched[s][:0]
		vtemp := e.vtemp
		for i, u := range ds.srcs {
			if !e.activeIn[u] {
				continue
			}
			deg := g.OutDeg(u)
			pu := prop[u]
			lo, hi := ds.rowPtr[i], ds.rowPtr[i+1]
			if fast {
				touched = fp.stream(vtemp, ds.col[lo:hi], ds.weight[lo:hi], pu, deg, e.updated, touched)
				continue
			}
			for j := lo; j < hi; j++ {
				v := ds.col[j]
				if !e.updated[v] {
					e.updated[v] = true
					touched = append(touched, v)
				}
				vtemp[v] = k.Reduce(vtemp[v], k.Process(ds.weight[j], pu, deg))
			}
		}
		e.touched[s] = touched
	})
	for _, u := range frontier {
		e.activeIn[u] = false
	}
}

// scatterContributions is the thin-frontier strategy: contiguous frontier
// chunks materialize (dst, contribution) pairs into per-(chunk, shard)
// buckets, and each shard folds its buckets in ascending chunk order.
// Concatenating contiguous chunks in index order restores ascending source
// order no matter where the boundaries fall, so the chunk count is free to
// track the worker count without affecting results.
func (e *Engine) scatterContributions(k algorithms.Kernel, fp *fastOps, prop []uint64, frontier []uint32) {
	g := e.g
	fastScatter := fp != nil && fp.scatter != nil
	fastGather := fp != nil && fp.gather != nil
	chunks := 4 * e.Workers()
	if chunks > len(frontier) {
		chunks = len(frontier)
	}
	size := (len(frontier) + chunks - 1) / chunks
	chunks = (len(frontier) + size - 1) / size
	e.ensureBuckets(chunks)

	e.parallelDo(chunks, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > len(frontier) {
			hi = len(frontier)
		}
		bk := e.buckets[c]
		for s := range bk {
			bk[s] = bk[s][:0]
		}
		for _, u := range frontier[lo:hi] {
			dsts, ws := g.Neighbors(u)
			deg := uint32(len(dsts))
			pu := prop[u]
			if fastScatter {
				fp.scatter(bk, e.owner, dsts, ws, pu, deg)
				continue
			}
			for i, v := range dsts {
				s := e.owner[v]
				bk[s] = append(bk[s], pair{v, k.Process(ws[i], pu, deg)})
			}
		}
	})
	if e.trace != nil {
		e.scatterMark = time.Now()
	}

	e.parallelDo(e.shards, func(s int) {
		touched := e.touched[s][:0]
		vtemp := e.vtemp
		for c := 0; c < chunks; c++ {
			b := e.buckets[c][s]
			if fastGather {
				touched = fp.gather(vtemp, b, e.updated, touched)
				continue
			}
			for _, p := range b {
				if !e.updated[p.dst] {
					e.updated[p.dst] = true
					touched = append(touched, p.dst)
				}
				vtemp[p.dst] = k.Reduce(vtemp[p.dst], p.contrib)
			}
		}
		e.touched[s] = touched
	})
}

// ensureBuckets grows the scatter bucket matrix to at least n chunks.
func (e *Engine) ensureBuckets(n int) {
	for len(e.buckets) < n {
		e.buckets = append(e.buckets, make([][]pair, e.shards))
	}
}

// parallelDo runs fn(0..tasks-1) across the engine's workers, pulling task
// indices from a shared atomic counter, and returns after every task
// completes (the WaitGroup is the phase barrier the determinism argument
// relies on).
func (e *Engine) parallelDo(tasks int, fn func(int)) {
	if tasks <= 0 {
		return
	}
	w := e.Workers()
	if w > tasks {
		w = tasks
	}
	if w <= 1 {
		for t := 0; t < tasks; t++ {
			fn(t)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				t := int(next.Add(1) - 1)
				if t >= tasks {
					return
				}
				fn(t)
			}
		}()
	}
	wg.Wait()
}

// Run is the one-shot convenience: build an engine with workers goroutines
// and execute the kernel once.
func Run(g *graph.CSR, k algorithms.Kernel, src uint32, maxIters, workers int) *Result {
	return New(g, Config{Workers: workers}).Run(k, src, maxIters)
}
