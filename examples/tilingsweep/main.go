// Tile-scaling study (Fig. 17 scenario): sweep the tile width multiplier
// for the conventional baseline and Piccolo on one dataset. The baseline
// degrades quickly beyond its sweet spot; Piccolo tolerates much larger
// tiles because its cache keeps only useful words and its misses are
// serviced by cheap in-memory gathers — until tiles outgrow the
// collection-extended MSHR.
package main

import (
	"fmt"
	"log"

	"piccolo"
)

func main() {
	g := piccolo.MustDataset("SW", piccolo.ScaleTiny)
	fmt.Printf("graph %s: %d vertices, %d edges\n\n", g.Name, g.V, g.E())
	fmt.Printf("%-8s %18s %18s\n", "tile", "GraphDyns(Cache)", "Piccolo")
	for _, scale := range []int{1, 2, 4, 8, 16, 32} {
		var cells [2]uint64
		for i, sys := range []piccolo.System{piccolo.SystemGraphDynsCache, piccolo.SystemPiccolo} {
			cfg := piccolo.Config{
				System:    sys,
				Kernel:    "sssp",
				Scale:     piccolo.ScaleTiny,
				TileScale: scale,
				Src:       -1,
			}
			res, err := piccolo.Run(cfg, g)
			if err != nil {
				log.Fatal(err)
			}
			cells[i] = res.Cycles
		}
		fmt.Printf("x%-7d %18d %18d\n", scale, cells[0], cells[1])
	}
	fmt.Println("\ncycles per configuration; note the baseline's growth vs Piccolo's plateau")
}
