package stream

import (
	"context"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"

	"piccolo/internal/algorithms"
	"piccolo/internal/engine"
	"piccolo/internal/graph"
)

// countdownCtx interrupts at exactly the n-th cancellation checkpoint
// (repair worklist rounds and engine superstep boundaries both poll
// Err()). Done() never fires — polling is the only signal.
type countdownCtx struct {
	context.Context
	left  atomic.Int64
	calls atomic.Int64
}

func newCountdown(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	c.calls.Add(1)
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// TestQueryCtxCancelDeterminism interrupts dynamic-engine queries at every
// checkpoint across the repair and full-run serving paths: each attempt
// must end in a context error (no result cached, no kernel state kept) or
// the full bit-identical result — and an uncanceled query immediately
// after must always serve the full result, proving the canceled attempt
// left no observable partial state (ISSUE 8: "ctx error XOR bit-identical
// full result, never a third state").
func TestQueryCtxCancelDeterminism(t *testing.T) {
	base := testGraphs()[1] // power-law Kronecker: repairs and full runs both occur
	rng := rand.New(rand.NewSource(41))
	for _, kernel := range allKernels {
		t.Run(kernel, func(t *testing.T) {
			d := New(base, Config{Workers: 3})
			edges := base.Edges()
			for round := 0; round < 4; round++ {
				batch := randomBatch(rng, base.V, 12)
				if _, err := d.ApplyUpdates(batch); err != nil {
					t.Fatal(err)
				}
				edges = append(edges, asEdges(batch)...)

				// Reference on the materialized post-update graph.
				refG := graph.FromEdges(base.Name, base.V, slices.Clone(edges))
				k, err := algorithms.New(kernel)
				if err != nil {
					t.Fatal(err)
				}
				src := algorithms.ResolveSource(k.Descriptor(), -1, refG.V, func() uint32 {
					hd, _ := graph.HighestDegreeVertex(refG)
					return hd
				})
				maxIters := algorithms.EffectiveMaxIters(k.Descriptor(), 0, engine.DefaultMaxIters)
				ref := algorithms.RunReference(refG, k, src, maxIters)

				// Count checkpoints for this version's first (uncached) query
				// by running it against a throwaway clone of the state: the
				// simplest faithful clone is to cancel never and accept that
				// the successful probe caches — so probe on attempt n after
				// invalidating via the next round instead. Here we instead
				// interrupt with growing budgets until one succeeds, which
				// visits every prefix of the checkpoint sequence exactly as
				// the probe-then-replay scheme would.
				for n := int64(0); ; n++ {
					ctx := newCountdown(n)
					res, info, err := d.QueryCtx(ctx, kernel, -1, 0)
					if err != nil {
						if err != context.Canceled {
							t.Fatalf("round %d n=%d: err = %v, want context.Canceled", round, n, err)
						}
						if res != nil && res.Prop != nil {
							t.Fatalf("round %d n=%d: canceled query returned properties (mode %s)", round, n, info.Mode)
						}
						continue
					}
					// First success must be the full bit-identical result —
					// and must have executed, not hit a cache a canceled
					// attempt somehow populated.
					if info.Mode == "cached" {
						t.Fatalf("round %d n=%d: first success served from cache; a canceled attempt cached a result", round, n)
					}
					for v := range ref.Prop {
						if res.Prop[v] != ref.Prop[v] {
							t.Fatalf("round %d n=%d (%s): prop[%d] = %#x, reference %#x",
								round, n, info.Mode, v, res.Prop[v], ref.Prop[v])
						}
					}
					break
				}
				// And the state the interrupted attempts left behind still
				// serves every later query correctly (checkQuery re-runs
				// uncanceled and compares bit-for-bit).
				checkQuery(t, d, refG, kernel)
			}
		})
	}
}
