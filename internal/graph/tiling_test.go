package graph

import (
	"testing"
	"testing/quick"
)

func TestTilingPartitionsEdges(t *testing.T) {
	g := Kronecker("k", 10, 8, 5)
	for _, width := range []uint32{0, 1, 64, 100, 1024, g.V, g.V * 2} {
		tl := NewTiling(g, width)
		if err := tl.Validate(); err != nil {
			t.Errorf("width %d: %v", width, err)
		}
	}
}

func TestTilingSingleTileWhenWide(t *testing.T) {
	g := Uniform("u", 100, 3, 2)
	tl := NewTiling(g, 0)
	if tl.NumTiles() != 1 {
		t.Errorf("NumTiles = %d, want 1", tl.NumTiles())
	}
	if uint64(tl.Tiles[0].Edges()) != g.E() {
		t.Errorf("single tile has %d edges, want %d", tl.Tiles[0].Edges(), g.E())
	}
}

func TestTilingTileCount(t *testing.T) {
	g := Uniform("u", 1000, 2, 3)
	tl := NewTiling(g, 300)
	if tl.NumTiles() != 4 { // ceil(1000/300)
		t.Errorf("NumTiles = %d, want 4", tl.NumTiles())
	}
	last := tl.Tiles[3]
	if last.DstLo != 900 || last.DstHi != 1000 {
		t.Errorf("last tile range [%d,%d), want [900,1000)", last.DstLo, last.DstHi)
	}
}

// Property: for random graphs and widths, every edge of g appears exactly
// once across tiles, in the right tile, under the right source.
func TestTilingExactCoverProperty(t *testing.T) {
	f := func(seed int64, widthRaw uint16) bool {
		g := Kronecker("k", 8, 4, seed)
		width := uint32(widthRaw%300) + 1
		tl := NewTiling(g, width)
		if tl.Validate() != nil {
			return false
		}
		// Rebuild the edge multiset from tiles and compare counts per
		// (src,dst) pair.
		counts := map[[2]uint32]int{}
		for u := uint32(0); u < g.V; u++ {
			dsts, _ := g.Neighbors(u)
			for _, v := range dsts {
				counts[[2]uint32{u, v}]++
			}
		}
		for k := range tl.Tiles {
			tile := &tl.Tiles[k]
			for i, u := range tile.Src {
				for e := tile.EdgeStart[i]; e < tile.EdgeStart[i+1]; e++ {
					key := [2]uint32{u, tile.Dst[e]}
					counts[key]--
					if counts[key] == 0 {
						delete(counts, key)
					}
				}
			}
		}
		return len(counts) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTopologyBytes(t *testing.T) {
	if got := TopologyBytes(10, 100); got != 10*8+100*4 {
		t.Errorf("TopologyBytes = %d", got)
	}
}

func TestDatasets(t *testing.T) {
	for _, d := range RealWorld() {
		g := d.Build(ScaleTiny)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if g.Name != d.Name {
			t.Errorf("built graph named %q, want %q", g.Name, d.Name)
		}
		if g.E() == 0 {
			t.Errorf("%s: empty", d.Name)
		}
	}
	for _, d := range Synthetic() {
		g := d.Build(ScaleTiny)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestDatasetRelativeShapes(t *testing.T) {
	// The proxies must preserve the paper's qualitative dataset properties.
	byName := map[string]*CSR{}
	for _, d := range RealWorld() {
		byName[d.Name] = d.Build(ScaleTiny)
	}
	if byName["UU"].AvgDegree() > 4 {
		t.Errorf("UU proxy avg degree %.1f, want ~3 (sparse)", byName["UU"].AvgDegree())
	}
	if byName["TW"].AvgDegree() < byName["SW"].AvgDegree() {
		t.Error("TW proxy should be denser than SW")
	}
	if byName["FS"].AvgDegree() < 2*byName["UU"].AvgDegree() {
		t.Error("FS proxy should be much denser than UU")
	}
}

func TestDatasetScaleOrdering(t *testing.T) {
	d, err := ByName("SW")
	if err != nil {
		t.Fatal(err)
	}
	tiny, small := d.Build(ScaleTiny), d.Build(ScaleSmall)
	if tiny.V >= small.V {
		t.Errorf("tiny V %d not smaller than small V %d", tiny.V, small.V)
	}
	if _, err := ByName("NOPE"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestCapacityFactor(t *testing.T) {
	if f := ScaleSmall.CapacityFactor(); f != 1 {
		t.Errorf("small factor %v, want 1", f)
	}
	if f := ScaleTiny.CapacityFactor(); f != 0.125 {
		t.Errorf("tiny factor %v, want 1/8", f)
	}
	if f := ScaleMedium.CapacityFactor(); f != 4 {
		t.Errorf("medium factor %v, want 4", f)
	}
}

func TestHighestDegreeVertex(t *testing.T) {
	g := FromEdges("h", 5, []Edge{{2, 0, 1}, {2, 1, 1}, {2, 3, 1}, {0, 1, 1}})
	if got, ok := HighestDegreeVertex(g); !ok || got != 2 {
		t.Errorf("HighestDegreeVertex = %d, want 2", got)
	}
}
